//! Exhaustive worst-case scheduling for *tiny* horizons.
//!
//! The simulator's adversaries are heuristics; this module computes the
//! **true** worst case — the schedule maximising the cost of the first
//! forced meeting — by exhaustive depth-first search over adversary
//! choices, up to an action-depth cap. Exponential in the cap (branching
//! = number of legal actions), so only usable for small instances; it is
//! the calibration reference for experiment F5.
//!
//! Because behaviors are stateful and not cheaply clonable in general,
//! the search re-executes runs from scratch along each explored prefix
//! (`B: FnMut() -> behaviors` factory). Cost is `O(b^depth · depth)`
//! behavior steps — fine for depth ≤ ~14.

use crate::behavior::Behavior;
use crate::runtime::{RunConfig, Runtime};
use rv_graph::Graph;

/// Result of an exhaustive search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorstCase {
    /// Highest meeting cost over all schedules that meet within the depth
    /// cap (`None` if no schedule meets within the cap).
    pub max_meeting_cost: Option<u64>,
    /// Whether some schedule within the cap avoids any meeting entirely.
    pub some_schedule_avoids: bool,
    /// Number of schedules (leaves) explored.
    pub schedules_explored: u64,
}

/// Exhaustively explores every adversary schedule of at most `max_actions`
/// actions, re-instantiating the agents through `make_behaviors` for each
/// prefix.
pub fn exhaustive_worst_case<B, F>(
    g: &Graph,
    mut make_behaviors: F,
    max_actions: usize,
) -> WorstCase
where
    B: Behavior,
    F: FnMut() -> Vec<B>,
{
    let mut result = WorstCase {
        max_meeting_cost: None,
        some_schedule_avoids: false,
        schedules_explored: 0,
    };
    // Iterative deepening over prefixes encoded as choice-index vectors.
    let mut prefix: Vec<usize> = Vec::new();
    loop {
        // Replay the current prefix.
        let mut rt = Runtime::new(g, make_behaviors(), RunConfig::rendezvous());
        let mut met = false;
        let mut replay_ok = true;
        for (depth, &idx) in prefix.iter().enumerate() {
            let choices = rt.legal_choices();
            if idx >= choices.len() {
                replay_ok = false;
                // Backtrack: advance the last index.
                prefix.truncate(depth);
                if !advance(&mut prefix) {
                    return result;
                }
                break;
            }
            let meetings = rt.apply(choices[idx].choice);
            if !meetings.is_empty() {
                met = true;
                result.schedules_explored += 1;
                result.max_meeting_cost = Some(
                    result
                        .max_meeting_cost
                        .map_or(rt.total_traversals(), |m| m.max(rt.total_traversals())),
                );
                // This prefix ends here; try its successor.
                prefix.truncate(depth + 1);
                if !advance(&mut prefix) {
                    return result;
                }
                break;
            }
        }
        if !replay_ok || met {
            continue;
        }
        if prefix.len() >= max_actions {
            // Depth cap without a meeting: an avoiding schedule exists.
            result.some_schedule_avoids = true;
            result.schedules_explored += 1;
            if !advance(&mut prefix) {
                return result;
            }
            continue;
        }
        // Deepen: no legal choices means all parked (counts as avoiding).
        if rt.legal_choices().is_empty() {
            result.some_schedule_avoids = true;
            result.schedules_explored += 1;
            if !advance(&mut prefix) {
                return result;
            }
            continue;
        }
        prefix.push(0);
    }
}

/// Advances the prefix like an odometer whose digit bases are discovered
/// lazily (the replay detects overflow). Returns `false` when exhausted.
fn advance(prefix: &mut [usize]) -> bool {
    match prefix.last_mut() {
        None => false,
        Some(last) => {
            *last += 1;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ScriptBehavior;
    use rv_graph::{generators, NodeId};

    #[test]
    fn two_node_path_forces_meeting_on_every_schedule() {
        // Both agents must cross the single edge: every schedule meets.
        let g = generators::path(2);
        let res = exhaustive_worst_case(
            &g,
            || {
                vec![
                    ScriptBehavior::new(NodeId(0), [0]),
                    ScriptBehavior::new(NodeId(1), [0]),
                ]
            },
            10,
        );
        assert!(!res.some_schedule_avoids, "path(2) leaves no escape");
        // Worst case: one agent fully crosses, waking/finding the other —
        // at most 2 completed traversals before the meeting.
        assert!(res.max_meeting_cost.unwrap() <= 2);
        assert!(res.schedules_explored > 0);
    }

    #[test]
    fn parked_agents_allow_avoidance() {
        // Agent 1 never moves and agent 0 walks away from it: within a
        // short horizon no meeting is forced.
        let g = generators::path(3);
        let res = exhaustive_worst_case(
            &g,
            || {
                vec![
                    ScriptBehavior::new(
                        NodeId(1),
                        [g.port_towards(NodeId(1), NodeId(2)).unwrap().0],
                    ),
                    ScriptBehavior::new(NodeId(0), []),
                ]
            },
            6,
        );
        assert!(res.some_schedule_avoids);
    }

    #[test]
    fn worst_case_dominates_heuristic_adversaries() {
        // The exhaustive maximum is at least what greedy-avoid achieves on
        // the same instance.
        use crate::adversary::GreedyAvoid;
        use crate::RunConfig;
        let g = generators::ring(3);
        let make = || {
            vec![
                ScriptBehavior::new(NodeId(0), [0, 0, 0]),
                ScriptBehavior::new(NodeId(1), [0, 0, 0]),
            ]
        };
        let exhaustive = exhaustive_worst_case(&g, make, 12);
        let mut rt = Runtime::new(&g, make(), RunConfig::rendezvous());
        let out = rt.run(&mut GreedyAvoid::new(3));
        if let (Some(max), crate::RunEnd::Meeting) = (exhaustive.max_meeting_cost, out.end) {
            assert!(max >= out.total_traversals);
        }
    }
}
