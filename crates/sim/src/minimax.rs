//! Exhaustive worst-case scheduling for *tiny* horizons.
//!
//! The simulator's adversaries are heuristics; this module computes the
//! **true** worst case — the schedule maximising the cost of the first
//! forced meeting — by exhaustive search over adversary choices, up to an
//! action-depth cap. Exponential in the cap (branching = number of legal
//! actions), so only usable for small instances; it is the calibration
//! reference for experiment F5.
//!
//! # Replay-free search
//!
//! Since behaviors implement the [`Behavior::fork`] contract, the search
//! never re-executes a schedule prefix. The agents are instantiated
//! **once** (the factory is `FnOnce`); from then on every state the search
//! needs again is captured as a [`Runtime::snapshot`] in O(state) and
//! re-entered with [`Runtime::restore`] — entering a sibling branch costs
//! one behavior fork instead of a full prefix replay, and the last sibling
//! takes the snapshot by move ([`Runtime::restore_owned`]) and pays no
//! fork at all. Interior nodes with a single legal action never snapshot.
//!
//! # Deep parallel splits over per-worker stealing deques
//!
//! Parallelism is a work-stealing frontier of forked runtime snapshots,
//! not a per-root-choice fan-out: every frontier node is an independent
//! job. Each worker owns a **deque** of jobs: it pushes and pops at the
//! *hot* end (newest jobs — depth-first locality, warm snapshots), and an
//! out-of-work worker **steals half** of a victim's deque from the *cold*
//! end (the oldest, shallowest jobs — the biggest subtrees, so one steal
//! buys the thief a long stretch of private work). There is no global
//! queue to contend on: lock traffic is one uncontended lock per owner
//! operation, and stealing only touches a victim when the thief is
//! otherwise idle.
//!
//! **Expansion is itself job-driven**: a worker holding a shallow job
//! (depth < 2, or an undersubscribed local deque below depth 6) *splits*
//! it — applies each legal choice and pushes the children back as jobs —
//! instead of searching it, so frontier seeding parallelises with the
//! same pool instead of serialising on the caller thread. Deeper or
//! sufficiently numerous jobs are searched depth-first in place. Each
//! worker owns one [`Runtime`] (built via [`Runtime::from_snapshot`] from
//! its first job) plus one choice/meeting buffer pair, reused across all
//! its jobs.
//!
//! Termination is the pending-counter protocol: `pending` counts queued
//! jobs plus in-flight splits (a split publishes its children *before*
//! retiring, a search job retires at pop time), so empty deques plus
//! `pending == 0` proves no job can ever appear again. Steals move jobs
//! without touching the counter.
//!
//! The explored leaf set — and therefore every field of [`WorstCase`] —
//! is bit-identical to the sequential enumeration regardless of worker
//! count, steal order, steal size, or where the racy split-vs-search
//! decision lands (splitting a subtree and searching it produce the same
//! leaves; the aggregates are commutative).
//!
//! # Transposition table over canonical fingerprints
//!
//! The schedule tree is really a DAG — distinct prefixes reach identical
//! states — and on symmetric families whole subtrees are automorphism
//! images of each other. By default ([`SearchOptions::memo`]) the search
//! consults a sharded transposition table keyed by the canonical state
//! fingerprint of `crate::memo`: a hit substitutes the memoized subtree
//! value (kept bit-identical to enumeration, including the leaf count), a
//! miss reserves the slot so two workers never both search the same
//! subtree, and a `Busy` verdict (another worker owns the slot) searches
//! without publishing so nobody ever blocks. Memoized values are stored
//! relative to the subtree root's traversal total, which is what lets one
//! entry serve every equivalent state wherever it appears in the tree.
//! Jobs retried across the panic boundary release their reservations
//! first (`// recovery:` below), so a retry never sees its own half-done
//! work. Behaviors that cannot preview their future
//! ([`Behavior::future_ports`]) silently degrade the search to the plain
//! enumeration. Quotienting by a real symmetry group is opt-in via
//! [`SearchOptions::automorphisms`] — pass
//! `GraphFamily::automorphisms(&g)` to fold automorphic states together.

use crate::behavior::Behavior;
use crate::memo::{Fingerprinter, FutureTable, MemoKey, MemoStats, MemoTable, MemoValue, Probe};
use crate::runtime::{ChoiceInfo, RunConfig, Runtime, RuntimeSnapshot};
use rv_graph::{Automorphisms, Graph};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Bounded re-dispatch: a job whose execution panics is retried at most
/// this many times (attempts total) before the panic is propagated as
/// terminal. Transient failures (the fault-injection harness, an OS-level
/// hiccup) are absorbed; a deterministic bug still surfaces after the
/// retries burn through.
const MAX_JOB_RETRIES: usize = 3;

/// Deterministic worker-panic injection for the robustness tests: job
/// execution attempt `(seq, attempt)` panics iff a pure hash of
/// `(seed, seq, attempt)` lands under `per_1024` — no clocks, no RNG
/// state, so a plan names the same set of doomed attempts on every
/// machine. With `attempts < MAX_JOB_RETRIES` every job eventually
/// succeeds and the search result must be bit-identical to an uninjected
/// run; with `attempts >= MAX_JOB_RETRIES` some job fails terminally and
/// the search propagates the panic.
#[derive(Clone, Copy, Debug)]
pub struct PanicPlan {
    /// Seed of the pure fire-decision hash.
    pub seed: u64,
    /// Fire probability numerator per attempt, out of 1024 (1024 = every
    /// attempt fires).
    pub per_1024: u32,
    /// Attempts `0..attempts` of a doomed job fire; later retries run
    /// clean. Keep below `MAX_JOB_RETRIES` (3) for a survivable plan.
    pub attempts: u32,
}

impl PanicPlan {
    /// Whether execution attempt `attempt` of job `seq` is doomed.
    fn fires(&self, seq: u64, attempt: usize) -> bool {
        (attempt as u32) < self.attempts
            && crate::fault::mix(self.seed, seq, attempt as u64) % 1024 < self.per_1024 as u64
    }
}

/// Result of an exhaustive search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorstCase {
    /// Highest meeting cost over all schedules that meet within the depth
    /// cap (`None` if no schedule meets within the cap).
    pub max_meeting_cost: Option<u64>,
    /// Whether some schedule within the cap avoids any meeting entirely.
    pub some_schedule_avoids: bool,
    /// Number of schedules (leaves) explored.
    pub schedules_explored: u64,
}

impl WorstCase {
    fn empty() -> Self {
        WorstCase {
            max_meeting_cost: None,
            some_schedule_avoids: false,
            schedules_explored: 0,
        }
    }

    fn record_meeting(&mut self, cost: u64) {
        self.schedules_explored += 1;
        self.max_meeting_cost = Some(self.max_meeting_cost.map_or(cost, |m| m.max(cost)));
    }

    fn record_avoidance(&mut self) {
        self.schedules_explored += 1;
        self.some_schedule_avoids = true;
    }

    fn merge(&mut self, other: WorstCase) {
        self.max_meeting_cost = match (self.max_meeting_cost, other.max_meeting_cost) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.some_schedule_avoids |= other.some_schedule_avoids;
        self.schedules_explored += other.schedules_explored;
    }

    /// Folds a root-relative memoized subtree value in; `base` is the
    /// total traversal count at the subtree root. `max`/`sum`/`or` all
    /// commute with the constant offset, so this reconstructs exactly the
    /// aggregates plain enumeration of that subtree would have produced.
    fn absorb_value(&mut self, v: MemoValue, base: u64) {
        if let Some(d) = v.max_delta {
            let cost = base + d;
            self.max_meeting_cost = Some(self.max_meeting_cost.map_or(cost, |m| m.max(cost)));
        }
        self.some_schedule_avoids |= v.avoids;
        self.schedules_explored += v.leaves;
    }
}

/// Knobs for [`search_worst_case`]. `Default` is the production
/// configuration: auto-sized worker pool, transposition table on, identity
/// symmetry group.
#[derive(Clone, Copy, Debug)]
pub struct SearchOptions<'a> {
    /// Worker-pool size; `None` sizes to [`std::thread::available_parallelism`].
    pub workers: Option<usize>,
    /// Consult the transposition table (`false` forces plain enumeration —
    /// the reference the memoized search is tested bit-identical against).
    pub memo: bool,
    /// Symmetry group to quotient fingerprints by; `None` means identity
    /// only (always sound). Pass the graph's verified group from
    /// [`rv_graph::GraphFamily::automorphisms`] for symmetric families.
    pub automorphisms: Option<&'a Automorphisms>,
}

impl Default for SearchOptions<'_> {
    fn default() -> Self {
        SearchOptions {
            workers: None,
            memo: true,
            automorphisms: None,
        }
    }
}

/// A search result plus table instrumentation.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// The worst case — bit-identical for every [`SearchOptions`]
    /// configuration.
    pub worst: WorstCase,
    /// Transposition-table statistics (`None` when the table was off).
    /// Deterministic at one worker; probe/hit counts vary with the steal
    /// interleaving at higher worker counts.
    pub memo: Option<MemoStats>,
}

/// [`exhaustive_worst_case`] with explicit control over workers, the
/// transposition table, and the symmetry quotient, reporting table
/// statistics alongside the (configuration-independent) result.
pub fn search_worst_case<B, F>(
    g: &Graph,
    make_behaviors: F,
    max_actions: usize,
    opts: &SearchOptions<'_>,
) -> SearchReport
where
    B: Behavior + Send,
    F: FnOnce() -> Vec<B>,
{
    let workers = opts.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    worst_case_hardened(
        g,
        make_behaviors,
        max_actions,
        workers,
        None,
        opts.memo,
        opts.automorphisms,
    )
}

/// An unexplored subtree: the frozen runtime state at its root and the
/// root's depth in the schedule tree.
struct Job<B> {
    snap: RuntimeSnapshot<B>,
    depth: usize,
}

/// Minimum split depth: jobs shallower than this are always split further
/// (strictly below the root fan-out).
const SPLIT_DEPTH_MIN: usize = 2;
/// Jobs at least this deep are always searched, even if the frontier never
/// reached the oversubscription target (narrow trees).
const SPLIT_DEPTH_MAX: usize = 6;
/// Target **per-worker** deque depth — enough local jobs that thieves
/// find meaty cold ends to steal and owners rarely go hunting.
const OVERSUBSCRIBE: usize = 4;

/// One worker's job deque. Owners push/pop at the back (hot end); thieves
/// drain from the front (cold end). A `Mutex<VecDeque>` is deliberate:
/// owner operations are uncontended in steady state, steals are rare and
/// O(half the deque), and the workspace bans external lock-free-deque
/// dependencies — the protocol (not the primitive) carries the scaling.
///
/// `hint` is an advisory copy of the queue length, refreshed under the
/// lock after every mutation, so thieves can scan the pool **without
/// locking**: a victim whose hint reads zero is skipped lock-free, and a
/// failed stealing round therefore takes at most one victim lock (the one
/// whose stale hint promised work) instead of one per victim. The hint is
/// never load-bearing for correctness — termination rides the pending
/// counter, and a stale read merely costs one extra yield-and-retry.
struct WorkerDeque<B> {
    queue: Mutex<VecDeque<Job<B>>>,
    hint: AtomicUsize,
}

impl<B: Behavior> WorkerDeque<B> {
    fn new() -> Self {
        WorkerDeque {
            queue: Mutex::new(VecDeque::new()),
            hint: AtomicUsize::new(0),
        }
    }

    /// Enqueues the root job (frontier seeding, before any worker runs).
    fn seed(&self, job: Job<B>) {
        let mut q = self.queue.lock().expect("deque poisoned");
        q.push_back(job);
        // ordering: Relaxed — advisory length mirror; see the type docs.
        self.hint.store(q.len(), Ordering::Relaxed);
    }

    /// Owner pop from the hot end, plus the backlog left behind (the
    /// split heuristic's undersubscription signal).
    fn pop_hot(&self) -> (Option<Job<B>>, usize) {
        let mut q = self.queue.lock().expect("deque poisoned");
        let job = q.pop_back();
        // ordering: Relaxed — advisory length mirror; see the type docs.
        self.hint.store(q.len(), Ordering::Relaxed);
        (job, q.len())
    }

    /// Owner push of freshly split children onto the hot end.
    fn push_children(&self, children: &mut Vec<Job<B>>) {
        let mut q = self.queue.lock().expect("deque poisoned");
        q.extend(children.drain(..));
        // ordering: Relaxed — advisory length mirror; see the type docs.
        self.hint.store(q.len(), Ordering::Relaxed);
    }
}

/// Steals **half of a victim's deque from the cold end** into `out`
/// (order preserved: oldest first). Victims are scanned round-robin
/// starting after the thief **by length hint, without locking**; only a
/// victim whose hint promises work gets its lock taken, so a failed round
/// costs at most one lock acquisition (down from one per victim).
/// Returns `false` if no victim yielded work. Jobs only move — the
/// pending counter is untouched.
fn steal_half<B: Behavior>(deques: &[WorkerDeque<B>], thief: usize, out: &mut Vec<Job<B>>) -> bool {
    let n = deques.len();
    for offset in 1..n {
        let victim = &deques[(thief + offset) % n];
        // ordering: Relaxed — advisory; a stale zero skips a victim that
        // just gained work (the retry loop comes back), a stale non-zero
        // costs the one lock this round is allowed.
        if victim.hint.load(Ordering::Relaxed) == 0 {
            continue;
        }
        let mut q = victim.queue.lock().expect("deque poisoned");
        if q.is_empty() {
            // Stale hint: repair it and give up — the single permitted
            // lock of this round is spent.
            // ordering: Relaxed — advisory length mirror.
            victim.hint.store(0, Ordering::Relaxed);
            return false;
        }
        let take = q.len().div_ceil(2);
        out.extend(q.drain(..take));
        // ordering: Relaxed — advisory length mirror.
        victim.hint.store(q.len(), Ordering::Relaxed);
        return true;
    }
    false
}

/// Exhaustively explores every adversary schedule of at most `max_actions`
/// actions over the agents produced by `make_behaviors` — which is called
/// exactly once, before the search starts; all further state reuse is
/// snapshot/restore ([`Behavior::fork`]), never re-instantiation.
pub fn exhaustive_worst_case<B, F>(g: &Graph, make_behaviors: F, max_actions: usize) -> WorstCase
where
    B: Behavior + Send,
    F: FnOnce() -> Vec<B>,
{
    search_worst_case(g, make_behaviors, max_actions, &SearchOptions::default()).worst
}

/// [`exhaustive_worst_case`] with an explicit worker-pool size, so tests
/// can force the multi-threaded frontier path regardless of the machine's
/// core count. Results are worker-count-independent.
#[cfg(test)]
fn worst_case_with_workers<B, F>(
    g: &Graph,
    make_behaviors: F,
    max_actions: usize,
    workers: usize,
) -> WorstCase
where
    B: Behavior + Send,
    F: FnOnce() -> Vec<B>,
{
    worst_case_hardened(g, make_behaviors, max_actions, workers, None, true, None).worst
}

/// [`exhaustive_worst_case`] under deterministic worker-panic injection
/// (the robustness harness): doomed execution attempts named by `plan`
/// panic inside the worker's job boundary and are re-dispatched by the
/// bounded-retry protocol. With a survivable plan (`plan.attempts <
/// MAX_JOB_RETRIES`) the result is bit-identical to the uninjected
/// search; an unsurvivable plan propagates the panic after the doomed
/// job's retries are exhausted — the pending-counter termination
/// protocol stays consistent either way (no wedged peers).
///
/// Injection rides the parallel job machinery, so `workers <= 1` runs
/// the plain sequential enumeration with no injection points.
pub fn worst_case_with_panic_injection<B, F>(
    g: &Graph,
    make_behaviors: F,
    max_actions: usize,
    workers: usize,
    plan: PanicPlan,
) -> WorstCase
where
    B: Behavior + Send,
    F: FnOnce() -> Vec<B>,
{
    // The table stays on under injection: the retry boundary's
    // reservation-release discipline is exactly what the robustness tests
    // must exercise.
    worst_case_hardened(
        g,
        make_behaviors,
        max_actions,
        workers,
        Some(plan),
        true,
        None,
    )
    .worst
}

/// The search body behind every public entry point: optional panic
/// injection, optional transposition table, per-worker stealing deques,
/// panic-bounded job execution.
#[allow(clippy::too_many_arguments)]
fn worst_case_hardened<B, F>(
    g: &Graph,
    make_behaviors: F,
    max_actions: usize,
    workers: usize,
    panics: Option<PanicPlan>,
    memo: bool,
    automorphisms: Option<&Automorphisms>,
) -> SearchReport
where
    B: Behavior + Send,
    F: FnOnce() -> Vec<B>,
{
    let identity_group;
    let autos = match automorphisms {
        Some(a) => a,
        None => {
            identity_group = Automorphisms::identity(g.order());
            &identity_group
        }
    };
    let table = if memo { Some(MemoTable::new()) } else { None };
    let mut result = WorstCase::empty();
    let mut rt = Runtime::new(g, make_behaviors(), RunConfig::rendezvous());
    // Materialise each behavior's lazy first-move state before the root
    // snapshot: every branch of the search restores a fork of this state,
    // so cold-start work done here is paid once instead of once per
    // branch. Commutes with the port stream (see `Behavior::warm`).
    rt.warm_behaviors();
    let mut choices: Vec<ChoiceInfo> = Vec::new();
    let mut meetings = Vec::new();
    // Behaviors are deterministic and meetings are terminal, so every
    // agent's arrival sequence is fixed for the whole search: resolve it
    // once here and share it read-only with every worker (no per-job
    // behavior forks on the fingerprint path).
    let futures = if table.is_some() {
        let f = FutureTable::resolve(&rt, max_actions);
        f.is_supported().then_some(f)
    } else {
        None
    };

    if workers <= 1 {
        // Single worker: splitting only buys parallelism, so don't —
        // search the whole tree depth-first from the root (this is the
        // sequential enumeration the parallel results are tested against).
        if let (Some(table), Some(futures)) = (&table, &futures) {
            let mut fpr = Fingerprinter::new();
            let t_root = rt.total_traversals();
            let mut pool: Vec<Vec<ChoiceInfo>> = Vec::new();
            let mut journal: Vec<MemoKey> = Vec::new();
            let v = explore_memo(
                &mut rt,
                0,
                max_actions,
                table,
                autos,
                futures,
                &mut fpr,
                &mut journal,
                &mut pool,
                0,
                &mut meetings,
            );
            debug_assert!(journal.is_empty(), "every reservation was published");
            result.absorb_value(v, t_root);
            return SearchReport {
                worst: result,
                memo: Some(table.stats()),
            };
        }
        explore_subtree(
            &mut rt,
            0,
            max_actions,
            &mut choices,
            &mut meetings,
            &mut result,
        );
        return SearchReport {
            worst: result,
            memo: table.as_ref().map(|t| t.stats()),
        };
    }

    let root = Job {
        snap: rt.snapshot(),
        depth: 0,
    };

    // Per-worker deques with steal-half: the root seeds worker 0, shallow
    // jobs split back into the owner's deque (expansion parallelises
    // too), deep ones are searched in place, and idle workers steal half
    // a victim's cold end. `pending` counts queued jobs plus in-flight
    // *splits*: a split publishes its children before retiring, while a
    // search job retires at pop time (it can never enqueue anything), so
    // all-deques-empty + pending == 0 means no job can ever appear again
    // — an empty sweep alone proves nothing while a peer might still
    // split (or hold stolen jobs mid-transfer).
    let deques: Vec<WorkerDeque<B>> = (0..workers).map(|_| WorkerDeque::new()).collect();
    deques[0].seed(root);
    let pending = AtomicUsize::new(1);
    // Job sequence numbers feed the panic injector's fire decision. The
    // pop→seq mapping is racy (whichever worker pops first draws the next
    // number), which is fine: the *result* is injection-independent — a
    // doomed attempt is retried against the same frozen snapshot, so
    // which jobs get doomed never shows in the aggregates.
    let seq = AtomicUsize::new(0);
    let branches: Vec<WorstCase> = std::thread::scope(|scope| {
        let deques = &deques;
        let pending = &pending;
        let seq = &seq;
        let table = table.as_ref();
        let futures = futures.as_ref();
        let handles: Vec<_> = (0..workers)
            .map(|id| {
                scope.spawn(move || {
                    let mut s: WorkerScratch<B> = WorkerScratch::new();
                    let mut loot: Vec<Job<B>> = Vec::new();
                    loop {
                        // Own deque first (hot end — depth-first locality).
                        let (job, backlog) = deques[id].pop_hot();
                        let Some(job) = job else {
                            // Out of local work: steal half a victim's
                            // cold end and requeue it here, keeping one
                            // job out to run immediately.
                            if steal_half(deques, id, &mut loot) {
                                let job = loot.pop().expect("steal yields at least one job");
                                let backlog = loot.len();
                                if !loot.is_empty() {
                                    deques[id].push_children(&mut loot);
                                }
                                run_job(
                                    RunCtx {
                                        g,
                                        deque: &deques[id],
                                        pending,
                                        seq,
                                        panics,
                                        max_actions,
                                        table,
                                        autos,
                                        futures,
                                    },
                                    job,
                                    backlog,
                                    &mut s,
                                );
                                continue;
                            }
                            // ordering: Acquire pairs with the AcqRel
                            // counter updates in `run_job` — observing 0
                            // here happens-after every split published its
                            // children, so empty deques + 0 is proof of
                            // global completion, not a torn read.
                            if pending.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            // A peer is still splitting (or mid-steal);
                            // jobs will surface shortly.
                            std::thread::yield_now();
                            continue;
                        };
                        run_job(
                            RunCtx {
                                g,
                                deque: &deques[id],
                                pending,
                                seq,
                                panics,
                                max_actions,
                                table,
                                autos,
                                futures,
                            },
                            job,
                            backlog,
                            &mut s,
                        );
                    }
                    s.local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for b in branches {
        result.merge(b);
    }
    SearchReport {
        worst: result,
        memo: table.as_ref().map(|t| t.stats()),
    }
}

/// Shared references a worker needs to run one job.
struct RunCtx<'a, 'g, B> {
    g: &'g Graph,
    deque: &'a WorkerDeque<B>,
    pending: &'a AtomicUsize,
    seq: &'a AtomicUsize,
    panics: Option<PanicPlan>,
    max_actions: usize,
    /// The shared transposition table (`None` = memoization off).
    table: Option<&'a MemoTable>,
    /// The symmetry group fingerprints are canonicalized under.
    autos: &'a Automorphisms,
    /// The search-global future table (`None` = fingerprints unavailable).
    futures: Option<&'a FutureTable>,
}

/// One worker's private state, reused across all its jobs: its runtime,
/// its scratch buffers, its result accumulator, and its memoization gear
/// (fingerprinter, per-level choice-buffer pool, reservation journal).
struct WorkerScratch<'g, B: Behavior> {
    rt: Option<Runtime<'g, B>>,
    choices: Vec<ChoiceInfo>,
    meetings: Vec<crate::Meeting>,
    children: Vec<Job<B>>,
    local: WorstCase,
    fpr: Fingerprinter,
    pool: Vec<Vec<ChoiceInfo>>,
    /// Keys this worker has reserved but not yet published, innermost
    /// last — drained (released) when a job attempt panics so the retry
    /// never observes its own reservations as `Busy`.
    journal: Vec<MemoKey>,
}

impl<B: Behavior> WorkerScratch<'_, B> {
    fn new() -> Self {
        WorkerScratch {
            rt: None,
            choices: Vec::new(),
            meetings: Vec::new(),
            children: Vec::new(),
            local: WorstCase::empty(),
            fpr: Fingerprinter::new(),
            pool: Vec::new(),
            journal: Vec::new(),
        }
    }
}

/// Runs one popped job: splits it into the owner's deque or searches it
/// in place, maintaining the pending-counter protocol (children published
/// before the parent retires; search jobs retire before the search so
/// idle peers don't spin through the tail).
///
/// Execution is **panic-bounded**: each attempt repositions the worker's
/// runtime from the job's frozen snapshot (a borrow — the snapshot
/// outlives every retry), scores into a scratch accumulator, and only a
/// *successful* attempt merges the scratch and publishes split children,
/// so a panicking attempt leaves no partial aggregates and no phantom
/// jobs behind. After [`MAX_JOB_RETRIES`] failed attempts the panic is
/// terminal: the job is retired from the pending counter *first* (so
/// idle peers drain and exit instead of wedging on a count that can
/// never reach zero) and then propagated to the join.
// `inline(never)`: letting this body (split + search dispatch) inline into
// the worker closure perturbs `explore_subtree`'s codegen enough to cost the
// *single-core* sequential path ~8% on minimax/ring4 (measured, interleaved
// A/B) — and the per-job call overhead is noise next to a subtree search.
#[inline(never)]
fn run_job<'g, B: Behavior>(
    ctx: RunCtx<'_, 'g, B>,
    job: Job<B>,
    backlog: usize,
    s: &mut WorkerScratch<'g, B>,
) {
    let split = should_split(job.depth, backlog, OVERSUBSCRIBE);
    // ordering: Relaxed — the sequence number only feeds the injector's
    // fire hash; no memory is published through it.
    let job_seq = ctx.seq.fetch_add(1, Ordering::Relaxed) as u64;
    if !split {
        // Search jobs enqueue nothing, so retire the job *before* the
        // subtree search: once the deques drain and every splitter has
        // retired, idle peers exit instead of busy-spinning for the
        // whole tail of the search.
        // ordering: AcqRel — the retire must not hoist above the pop that
        // claimed this job (the job left the deque happens-before its
        // retirement), keeping the counter an upper bound on live work.
        ctx.pending.fetch_sub(1, Ordering::AcqRel);
    }
    let mut attempt = 0usize;
    loop {
        // recovery: a panicking attempt is retried against the same
        // frozen snapshot — `scratch`/`children` from the doomed attempt
        // are discarded (no partial merge), the reservation journal is
        // drained and released (so the retry re-reserves fresh slots
        // instead of seeing its own half-done entries as Busy), the
        // worker's runtime is repositioned by a fresh `restore`, and after
        // MAX_JOB_RETRIES the panic propagates with the job already
        // retired (see below).
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = ctx.panics {
                if plan.fires(job_seq, attempt) {
                    // `resume_unwind`, not `panic!`: an *expected* doomed
                    // attempt must not trip the global panic hook (no
                    // stderr spam, no aborting hooks) — it is a payload
                    // for the boundary below, not a programming error.
                    std::panic::resume_unwind(Box::new(format!(
                        "injected worker panic: job {job_seq} attempt {attempt}"
                    )));
                }
            }
            // Position at the job's state by borrow — retries need the
            // snapshot intact, so nothing consumes it until the job is
            // done. The first job builds this worker's runtime.
            let rt = match s.rt.as_mut() {
                Some(rt) => {
                    rt.restore(&job.snap);
                    rt
                }
                None => s.rt.insert(Runtime::from_snapshot(
                    ctx.g,
                    &job.snap,
                    RunConfig::rendezvous(),
                )),
            };
            // Memoization needs both the table and the search-global
            // future table (resolved once at the root; see
            // `worst_case_hardened`) — no per-job anchoring.
            let memo_on = ctx.table.is_some() && ctx.futures.is_some();
            let mut scratch = WorstCase::empty();
            if split {
                split_job(
                    rt,
                    &job.snap,
                    job.depth,
                    ctx.max_actions,
                    &mut s.choices,
                    &mut s.meetings,
                    if memo_on {
                        ctx.table
                            .zip(ctx.futures)
                            .map(|(t, f)| (t, ctx.autos, f, &mut s.fpr))
                    } else {
                        None
                    },
                    &mut s.children,
                    &mut scratch,
                );
            } else if memo_on {
                let table = ctx.table.expect("memo_on implies a table");
                let futures = ctx.futures.expect("memo_on implies futures");
                let t_root = rt.total_traversals();
                let v = explore_memo(
                    rt,
                    job.depth,
                    ctx.max_actions,
                    table,
                    ctx.autos,
                    futures,
                    &mut s.fpr,
                    &mut s.journal,
                    &mut s.pool,
                    0,
                    &mut s.meetings,
                );
                debug_assert!(s.journal.is_empty(), "every reservation was published");
                scratch.absorb_value(v, t_root);
            } else {
                explore_subtree(
                    rt,
                    job.depth,
                    ctx.max_actions,
                    &mut s.choices,
                    &mut s.meetings,
                    &mut scratch,
                );
            }
            scratch
        }));
        match outcome {
            Ok(scratch) => {
                s.local.merge(scratch);
                break;
            }
            Err(payload) => {
                // The doomed attempt may have half-filled the children
                // buffer before panicking; drop its jobs — the retry
                // re-splits from the snapshot and regenerates them all.
                s.children.clear();
                // Release every reservation the doomed attempt still
                // owns: the slots revert to vacant, so this job's retry
                // (or any peer) reserves and searches them afresh.
                if let Some(table) = ctx.table {
                    for key in s.journal.drain(..) {
                        // publish: abandoned — the panic boundary releases
                        // in place of the publish the attempt never made.
                        table.release(key);
                    }
                }
                attempt += 1;
                if attempt >= MAX_JOB_RETRIES {
                    if split {
                        // Terminal failure on a split job: retire it so
                        // the pending counter still reaches zero and the
                        // surviving workers drain and exit — the panic
                        // then surfaces at the scope join instead of
                        // deadlocking the pool.
                        // ordering: AcqRel — same pairing as the success
                        // path's retire below.
                        ctx.pending.fetch_sub(1, Ordering::AcqRel);
                    }
                    std::panic::resume_unwind(payload);
                }
                // Clockless backoff before the re-dispatch: repeated
                // failures step aside for progressively longer (yield
                // loops, not sleeps — determinism contract bans clocks).
                for _ in 0..attempt * 16 {
                    std::thread::yield_now();
                }
            }
        }
    }
    if split {
        if !s.children.is_empty() {
            // Publish the children before retiring the parent so
            // `pending` can't dip to zero while work still exists.
            // ordering: AcqRel — the add must not sink below the deque
            // push (Release side), and idle workers' Acquire loads must
            // see it before concluding the frontier drained.
            ctx.pending.fetch_add(s.children.len(), Ordering::AcqRel);
            ctx.deque.push_children(&mut s.children);
        }
        // ordering: AcqRel — retiring the parent must stay ordered after
        // the children's publication above; pairs with the termination
        // load in the worker loop.
        ctx.pending.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Whether a popped job should be split into child jobs (true) or searched
/// depth-first in place (false). `backlog` is the owner's deque depth
/// observed at pop time — with stealing an approximation, which is safe:
/// a subtree yields the same leaves whichever side of the boundary it
/// lands on.
fn should_split(depth: usize, backlog: usize, target: usize) -> bool {
    depth < SPLIT_DEPTH_MIN || (depth < SPLIT_DEPTH_MAX && backlog < target)
}

/// Splits one job whose state `rt` is **already positioned at** (callers
/// restore the job's snapshot — or build the runtime from it): applies
/// each legal choice and pushes every meeting-free child as a new job
/// onto `out`. Leaves (depth cap, all parked, or a forced meeting) are
/// scored into `result` right here. The snapshot is **borrowed** — the
/// panic boundary in [`run_job`] keeps it alive so a doomed attempt can
/// re-split from the same frozen state (the pre-hardening version moved
/// it into the final sibling's restore; one behavior fork per split is
/// the price of retryability).
///
/// With `memo` present, each meeting-free child is probed **read-only**
/// against the transposition table before being enqueued: a hit scores
/// the memoized value here and skips the job entirely (this is how
/// stolen duplicates of already-searched subtrees collapse). Split jobs
/// never reserve — a job that fans out and retires owes no publish, so
/// the panic boundary has nothing to unwind for them.
#[allow(clippy::too_many_arguments)]
fn split_job<B: Behavior>(
    rt: &mut Runtime<B>,
    snap: &RuntimeSnapshot<B>,
    depth: usize,
    max_actions: usize,
    choices: &mut Vec<ChoiceInfo>,
    meetings: &mut Vec<crate::Meeting>,
    mut memo: Option<(&MemoTable, &Automorphisms, &FutureTable, &mut Fingerprinter)>,
    out: &mut Vec<Job<B>>,
    result: &mut WorstCase,
) {
    if depth >= max_actions {
        result.record_avoidance();
        return;
    }
    rt.legal_choices_into(choices);
    let width = choices.len();
    if width == 0 {
        // All parked counts as an avoiding schedule.
        result.record_avoidance();
        return;
    }
    for i in 0..width {
        if i > 0 {
            rt.restore(snap);
            rt.legal_choices_into(choices);
        }
        meetings.clear();
        rt.apply_into(choices[i].choice, meetings);
        if !meetings.is_empty() {
            result.record_meeting(rt.total_traversals());
            continue;
        }
        if let Some((table, autos, futures, fpr)) = memo.as_mut() {
            let residual = max_actions - (depth + 1);
            if residual >= MEMO_MIN_RESIDUAL {
                if let Some(fp) = fpr.fingerprint(rt, residual, autos, futures) {
                    if let Some(v) = table.probe((fp, residual as u32)) {
                        result.absorb_value(v, rt.total_traversals());
                        continue;
                    }
                }
            }
        }
        out.push(Job {
            snap: rt.snapshot(),
            depth: depth + 1,
        });
    }
}

/// Below this residual depth the table is not consulted: the subtree is
/// cheaper to enumerate than the canonical fingerprint is to compute.
const MEMO_MIN_RESIDUAL: usize = 2;

/// Depth-first memoized search of the subtree whose root state `rt` is
/// **already positioned at**, returning the subtree's value *relative to
/// its own root* (see [`MemoValue`]). The recursion depth is bounded by
/// `max_actions` (tiny by this module's charter), and each level owns a
/// pooled choice buffer (`pool[level]`) so restored siblings skip
/// re-enumeration — the list of legal choices at a node is a pure
/// function of its state, which the restore reproduced.
///
/// At every node with residual depth ≥ [`MEMO_MIN_RESIDUAL`] the table is
/// consulted via the reserve→publish protocol: `Hit` returns the stored
/// value, `Reserve` records the key in `journal` (the panic boundary's
/// release list), searches, then publishes and pops the key; `Busy`
/// searches without publishing. Reservation keys always publish/release
/// LIFO, innermost first.
#[allow(clippy::too_many_arguments)]
fn explore_memo<B: Behavior>(
    rt: &mut Runtime<'_, B>,
    depth: usize,
    max_actions: usize,
    table: &MemoTable,
    autos: &Automorphisms,
    futures: &FutureTable,
    fpr: &mut Fingerprinter,
    journal: &mut Vec<MemoKey>,
    pool: &mut Vec<Vec<ChoiceInfo>>,
    level: usize,
    meetings: &mut Vec<crate::Meeting>,
) -> MemoValue {
    if depth >= max_actions {
        return MemoValue::avoid_leaf();
    }
    let residual = max_actions - depth;
    let mut reserved: Option<MemoKey> = None;
    if residual >= MEMO_MIN_RESIDUAL {
        if let Some(fp) = fpr.fingerprint(rt, residual, autos, futures) {
            let key = (fp, residual as u32);
            match table.probe_or_reserve(key) {
                Probe::Hit(v) => return v,
                Probe::Reserve => {
                    journal.push(key);
                    reserved = Some(key);
                }
                Probe::Busy => {}
            }
        }
    }
    if pool.len() <= level {
        pool.push(Vec::new());
    }
    let mut choices = std::mem::take(&mut pool[level]);
    rt.legal_choices_into(&mut choices);
    let value = if choices.is_empty() {
        // All parked counts as an avoiding schedule.
        MemoValue::avoid_leaf()
    } else {
        // Undo discipline: every descent is bracketed by
        // [`Runtime::apply_undoable`]/[`Runtime::undo`], so this function
        // returns with `rt` exactly as it entered — no snapshots, no
        // whole-runtime forks, and a `Start` descent saves nothing but a
        // few `Copy` fields. The bracket requires meeting-free applies:
        // children annotated `causes_meeting` are terminal (record the
        // foreseen delta directly, never enter them), and `Wake` — the one
        // unannotated kind — is split by [`Runtime::wake_would_meet`] into
        // a traversal-free meeting leaf or a real descent.
        let t_node = rt.total_traversals();
        let horizon = depth + 1 == max_actions;
        let mut acc = MemoValue::empty();
        for info in choices.iter() {
            if info.causes_meeting {
                let delta = matches!(info.choice.kind, crate::ActionKind::Finish) as u64;
                acc.record_meeting_delta(delta);
                continue;
            }
            if matches!(info.choice.kind, crate::ActionKind::Wake)
                && rt.wake_would_meet(info.choice.agent)
            {
                // Waking at an occupied node meets on the spot — no
                // traversal completes, so the delta is zero.
                acc.record_meeting_delta(0);
                continue;
            }
            if horizon {
                // The child sits at the depth cap and every meeting case
                // is handled above: a guaranteed meeting-free leaf,
                // counted without touching the runtime.
                acc.absorb(MemoValue::avoid_leaf(), 0);
                continue;
            }
            let token = rt.apply_undoable(info.choice, meetings);
            let t_child = rt.total_traversals();
            let child = explore_memo(
                rt,
                depth + 1,
                max_actions,
                table,
                autos,
                futures,
                fpr,
                journal,
                pool,
                level + 1,
                meetings,
            );
            acc.absorb(child, t_child - t_node);
            rt.undo(token);
        }
        acc
    };
    pool[level] = choices;
    if let Some(key) = reserved {
        // publish: completes the reservation this node took on entry; the
        // key comes off the journal only after the value is in the table.
        table.publish(key, value);
        let popped = journal.pop();
        debug_assert_eq!(popped, Some(key), "reservations publish LIFO");
    }
    value
}

/// A node of the depth-first descent: its frozen state (absent when the
/// node has a single child — nothing will ever re-enter it) and the
/// sibling iteration cursor.
struct Frame<B> {
    snap: Option<RuntimeSnapshot<B>>,
    next: usize,
    width: usize,
}

/// Depth-first search of the subtree whose root state `rt` is **already
/// positioned at** (callers restore the job's snapshot — by move when they
/// own it), with the root at schedule-tree depth `depth0`. Scores every
/// leaf into `result`; on exit `rt` is at an arbitrary state within the
/// subtree.
fn explore_subtree<B: Behavior>(
    rt: &mut Runtime<B>,
    depth0: usize,
    max_actions: usize,
    choices: &mut Vec<ChoiceInfo>,
    meetings: &mut Vec<crate::Meeting>,
    result: &mut WorstCase,
) {
    let mut stack: Vec<Frame<B>> = Vec::new();
    loop {
        // `rt` sits at a just-entered, meeting-free node.
        let depth = depth0 + stack.len();
        let mut is_leaf = true;
        if depth < max_actions {
            rt.legal_choices_into(choices);
            if !choices.is_empty() {
                let width = choices.len();
                stack.push(Frame {
                    // Single-child nodes are never re-entered: skip the fork.
                    snap: (width > 1).then(|| rt.snapshot()),
                    next: 0,
                    width,
                });
                is_leaf = false;
            }
        }
        if is_leaf {
            // Depth cap or all parked: an avoiding schedule exists.
            result.record_avoidance();
        }
        // Advance to the next unexplored child anywhere up the stack.
        loop {
            let Some(frame) = stack.last_mut() else {
                return;
            };
            if frame.next >= frame.width {
                stack.pop();
                continue;
            }
            let i = frame.next;
            frame.next += 1;
            if i > 0 {
                // Re-enter the frame's node. The final sibling takes the
                // snapshot by move — no behavior fork.
                if i + 1 == frame.width {
                    let snap = frame.snap.take().expect("width > 1 frames hold a snapshot");
                    rt.restore_owned(snap);
                } else {
                    rt.restore(
                        frame
                            .snap
                            .as_ref()
                            .expect("width > 1 frames hold a snapshot"),
                    );
                }
                rt.legal_choices_into(choices);
            }
            meetings.clear();
            rt.apply_into(choices[i].choice, meetings);
            if meetings.is_empty() {
                break; // descend: the outer loop enters the child
            }
            result.record_meeting(rt.total_traversals());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ScriptBehavior;
    use rv_graph::{generators, NodeId};

    #[test]
    fn two_node_path_forces_meeting_on_every_schedule() {
        // Both agents must cross the single edge: every schedule meets.
        let g = generators::path(2);
        let res = exhaustive_worst_case(
            &g,
            || {
                vec![
                    ScriptBehavior::new(NodeId(0), [0]),
                    ScriptBehavior::new(NodeId(1), [0]),
                ]
            },
            10,
        );
        assert!(!res.some_schedule_avoids, "path(2) leaves no escape");
        // Worst case: one agent fully crosses, waking/finding the other —
        // at most 2 completed traversals before the meeting.
        assert!(res.max_meeting_cost.unwrap() <= 2);
        assert!(res.schedules_explored > 0);
    }

    #[test]
    fn parked_agents_allow_avoidance() {
        // Agent 1 never moves and agent 0 walks away from it: within a
        // short horizon no meeting is forced.
        let g = generators::path(3);
        let res = exhaustive_worst_case(
            &g,
            || {
                vec![
                    ScriptBehavior::new(
                        NodeId(1),
                        [g.port_towards(NodeId(1), NodeId(2)).unwrap().0],
                    ),
                    ScriptBehavior::new(NodeId(0), []),
                ]
            },
            6,
        );
        assert!(res.some_schedule_avoids);
    }

    #[test]
    fn worst_case_dominates_heuristic_adversaries() {
        // The exhaustive maximum is at least what greedy-avoid achieves on
        // the same instance.
        use crate::adversary::GreedyAvoid;
        use crate::RunConfig;
        let g = generators::ring(3);
        let make = || {
            vec![
                ScriptBehavior::new(NodeId(0), [0, 0, 0]),
                ScriptBehavior::new(NodeId(1), [0, 0, 0]),
            ]
        };
        let exhaustive = exhaustive_worst_case(&g, make, 12);
        let mut rt = Runtime::new(&g, make(), RunConfig::rendezvous());
        let out = rt.run(&mut GreedyAvoid::new(3));
        if let (Some(max), crate::RunEnd::Meeting) = (exhaustive.max_meeting_cost, out.end) {
            assert!(max >= out.total_traversals);
        }
    }

    #[test]
    fn zero_horizon_has_one_avoiding_schedule() {
        let g = generators::path(2);
        let res = exhaustive_worst_case(
            &g,
            || {
                vec![
                    ScriptBehavior::new(NodeId(0), [0]),
                    ScriptBehavior::new(NodeId(1), [0]),
                ]
            },
            0,
        );
        assert_eq!(res.max_meeting_cost, None);
        assert!(res.some_schedule_avoids);
        assert_eq!(res.schedules_explored, 1);
    }

    #[test]
    fn factory_is_called_exactly_once() {
        // The replay-free contract: behaviors are instantiated once, all
        // re-entry is snapshot/restore.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let g = generators::ring(4);
        let res = exhaustive_worst_case(
            &g,
            || {
                // ordering: SeqCst — test-only call counter; strongest
                // ordering so the assertion below can't race the factory.
                calls.fetch_add(1, Ordering::SeqCst);
                vec![
                    ScriptBehavior::new(NodeId(0), [0, 0, 0, 0]),
                    ScriptBehavior::new(NodeId(2), [0, 0, 0, 0]),
                ]
            },
            8,
        );
        // 129 leaves: pinned against the seed's sequential odometer
        // enumeration (replayed via reset + factory per prefix).
        assert_eq!(res.schedules_explored, 129);
        // ordering: SeqCst — see the matching fetch_add; the search has
        // joined all workers by now, this is belt and braces.
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deep_split_matches_shallow_horizons_incrementally() {
        // Horizons straddling SPLIT_DEPTH_MIN/MAX must enumerate exactly
        // the leaf sets the seed's sequential odometer enumeration
        // produced (ring(4) with two 4-step scripted walkers; counts
        // pinned against a reimplementation of the pre-snapshot search).
        let g = generators::ring(4);
        let make = || {
            vec![
                ScriptBehavior::new(NodeId(0), [0, 0, 0, 0]),
                ScriptBehavior::new(NodeId(2), [0, 0, 0, 0]),
            ]
        };
        for (depth, expected) in [(1, 2), (2, 4), (3, 8), (5, 32), (7, 85), (8, 129)] {
            let res = exhaustive_worst_case(&g, make, depth);
            assert_eq!(
                res.schedules_explored, expected,
                "leaf count drifted from the seed enumeration at depth {depth}"
            );
        }
    }

    #[test]
    fn results_are_worker_count_independent() {
        // Force the multi-threaded frontier path (the steal loop must not
        // hold the queue lock across a subtree search) and check it against
        // the single-worker enumeration, worker count by worker count.
        let g = generators::ring(4);
        let make = || {
            vec![
                ScriptBehavior::new(NodeId(0), [0, 0, 0, 0]),
                ScriptBehavior::new(NodeId(2), [0, 0, 0, 0]),
            ]
        };
        let reference = worst_case_with_workers(&g, make, 8, 1);
        assert_eq!(reference.schedules_explored, 129);
        for workers in [2, 3, 8] {
            assert_eq!(
                worst_case_with_workers(&g, make, 8, workers),
                reference,
                "worker count {workers} changed the result"
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Worker-count independence over the stealing deques, as a
        /// property: random ring size, script lengths, start offsets,
        /// horizon, and worker count must all reproduce the sequential
        /// enumeration bit for bit — whatever the steal interleaving.
        #[test]
        fn stealing_deques_are_worker_count_independent(
            n in 3usize..7,
            script_len in 1usize..6,
            offset in 1usize..6,
            horizon in 1usize..9,
            workers in 2usize..9,
        ) {
            let g = generators::ring(n);
            let offset = 1 + (offset % (n - 1)); // distinct start nodes
            let make = || {
                vec![
                    ScriptBehavior::new(NodeId(0), vec![0; script_len]),
                    ScriptBehavior::new(NodeId(offset), vec![0; script_len]),
                ]
            };
            let reference = worst_case_with_workers(&g, make, horizon, 1);
            let parallel = worst_case_with_workers(&g, make, horizon, workers);
            proptest::prop_assert_eq!(
                parallel, reference,
                "workers={} n={} script_len={} offset={} horizon={}",
                workers, n, script_len, offset, horizon
            );
        }
    }

    #[test]
    fn watchdog_injected_panics_mid_search_yield_identical_results() {
        // The crash-recovery watchdog: a survivable panic plan dooms a
        // large fraction of job attempts (including splits mid-steal
        // traffic) at several seeds; the bounded re-dispatch must absorb
        // every one and the aggregate WorstCase must be bit-identical to
        // the sequential reference.
        let g = generators::ring(6);
        let make = || {
            vec![
                ScriptBehavior::new(NodeId(0), [0, 0, 0, 0, 0]),
                ScriptBehavior::new(NodeId(2), [0, 0, 0, 0, 0]),
                ScriptBehavior::new(NodeId(4), [0, 0, 0, 0, 0]),
            ]
        };
        let reference = worst_case_with_workers(&g, make, 9, 1);
        assert!(reference.schedules_explored > 1000);
        for seed in 0..4u64 {
            let plan = PanicPlan {
                seed,
                per_1024: 512, // every other attempt is doomed
                attempts: (MAX_JOB_RETRIES - 1) as u32,
            };
            for workers in [2, 4, 8] {
                assert_eq!(
                    worst_case_with_panic_injection(&g, make, 9, workers, plan),
                    reference,
                    "seed {seed}, workers {workers}: injected panics changed the result"
                );
            }
        }
    }

    #[test]
    fn survivable_injection_matches_on_the_pinned_instance() {
        // Same contract on the pinned ring(4)/depth-8 instance (129
        // leaves) — the golden minimax workload under fire.
        let g = generators::ring(4);
        let make = || {
            vec![
                ScriptBehavior::new(NodeId(0), [0, 0, 0, 0]),
                ScriptBehavior::new(NodeId(2), [0, 0, 0, 0]),
            ]
        };
        let plan = PanicPlan {
            seed: 9,
            per_1024: 700,
            attempts: (MAX_JOB_RETRIES - 1) as u32,
        };
        let res = worst_case_with_panic_injection(&g, make, 8, 4, plan);
        assert_eq!(res, worst_case_with_workers(&g, make, 8, 1));
        assert_eq!(res.schedules_explored, 129);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn unsurvivable_injection_propagates_without_wedging() {
        // Every attempt of every job is doomed: after MAX_JOB_RETRIES the
        // panic must *propagate* (this test's should_panic) rather than
        // wedge the pool — the doomed job retires itself from the pending
        // counter first, so peers drain and the scope join surfaces the
        // payload instead of hanging the test forever.
        let g = generators::ring(4);
        let make = || {
            vec![
                ScriptBehavior::new(NodeId(0), [0, 0, 0, 0]),
                ScriptBehavior::new(NodeId(2), [0, 0, 0, 0]),
            ]
        };
        let plan = PanicPlan {
            seed: 1,
            per_1024: 1024,
            attempts: MAX_JOB_RETRIES as u32,
        };
        let _ = worst_case_with_panic_injection(&g, make, 8, 4, plan);
    }

    #[test]
    fn job_driven_expansion_is_worker_count_independent() {
        // Now that frontier *expansion* also runs as work-stealing jobs,
        // the split-vs-search boundary depends on racy backlog reads; the
        // result must not. A 3-agent instance gives a wider root fan-out
        // (more splitting at every shallow depth) and a deeper horizon
        // keeps workers splitting and searching concurrently.
        let g = generators::ring(6);
        let make = || {
            vec![
                ScriptBehavior::new(NodeId(0), [0, 0, 0, 0, 0]),
                ScriptBehavior::new(NodeId(2), [0, 0, 0, 0, 0]),
                ScriptBehavior::new(NodeId(4), [0, 0, 0, 0, 0]),
            ]
        };
        let reference = worst_case_with_workers(&g, make, 9, 1);
        assert!(reference.schedules_explored > 1000);
        for workers in [2, 4, 7, 16] {
            assert_eq!(
                worst_case_with_workers(&g, make, 9, workers),
                reference,
                "worker count {workers} changed the job-driven expansion result"
            );
        }
    }
}
