//! Deterministic fault injection: crash-stop agents, transient edge
//! outages, and meeting-log append loss.
//!
//! The paper's adversary controls *scheduling*; this module adds the
//! orthogonal adversary of *failure*, in the spirit of the fault-tolerant
//! rendezvous literature (crash/Byzantine gathering variants). Three fault
//! kinds, chosen because each attacks a different layer of the engine:
//!
//! * **Crash-stop** ([`CrashFault`]): at a given action count, an agent
//!   halts permanently wherever it is — mid-edge or at a node. Its body
//!   remains observable (it still forces meetings and its `info` is still
//!   readable by live agents crossing it), but it never acts again and its
//!   behavior receives no further deliveries.
//! * **Edge outage** ([`OutageFault`]): for a bounded window of actions, no
//!   agent may *start* a traversal of the edge (agents already inside may
//!   finish — the outage blocks entry, not exit).
//! * **Log loss** ([`FaultPlan::log_losses`]): a meeting declared at a
//!   listed action is delivered to its participants but its append to the
//!   runtime's [`crate::MeetingLog`] is dropped — modelling durable-log
//!   write loss in protocol mode without perturbing agent state.
//!
//! # Determinism contract
//!
//! A [`FaultPlan`] is plain data keyed on **action counts** — never the
//! wall clock, thread identity, or iteration order — so a faulted run is a
//! pure function of (plan, seed, schedule) and reproduces bit-identically.
//! [`FaultPlan::seeded`] derives a plan from a seed by pure integer
//! hashing (SplitMix64 finalizer), so chaos suites can name a whole fault
//! universe with one `u64`. The **empty plan is provably free**: a
//! [`crate::Runtime`] without a plan installed takes no fault branches at
//! all, and the golden suites pin that installing `FaultPlan::empty()`
//! leaves every fingerprint bit-identical.
//!
//! # Recovery semantics
//!
//! Faults never make a run *hang*: [`crate::Runtime::step`] classifies a
//! choiceless state as [`crate::RunEnd::AllCrashed`] /
//! [`crate::RunEnd::SurvivorsParked`] instead of looping, and an
//! all-agents-blocked edge outage fast-forwards the action clock to the
//! earliest release instead of deadlocking. Snapshots do **not** carry the
//! plan (it is run *configuration*, like [`crate::RunConfig`]); restoring
//! a snapshot rewinds the action clock, and the [`FaultClock`] re-derives
//! its state from the plan on the next step. See `docs/FAULTS.md` for the
//! full catalogue.

use serde::Serialize;

/// A crash-stop fault: `agent` halts permanently once the runtime's action
/// counter reaches `at_action`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct CrashFault {
    /// Action count at which the crash takes effect (applied before the
    /// next decision once `actions >= at_action`).
    pub at_action: u64,
    /// Index of the crashed agent.
    pub agent: usize,
}

/// A transient edge outage: starting a traversal of dense edge index
/// `edge_index` is illegal for actions in `[at_action, at_action +
/// duration_actions)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct OutageFault {
    /// Action count at which the edge goes down.
    pub at_action: u64,
    /// Dense edge index (see `rv_graph::Graph::edge_index_at`).
    pub edge_index: usize,
    /// Window length in actions; the edge is back up once `actions >=
    /// at_action + duration_actions`.
    pub duration_actions: u64,
}

/// A complete, serializable fault schedule: what fails, and when, in
/// action-count time. See the module docs for the determinism contract.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct FaultPlan {
    /// Crash-stop faults, sorted by `at_action`.
    pub crashes: Vec<CrashFault>,
    /// Edge outages, sorted by `at_action`.
    pub outages: Vec<OutageFault>,
    /// Actions whose meeting-log append is lost, sorted ascending.
    pub log_losses: Vec<u64>,
}

/// Shape parameters for [`FaultPlan::seeded`]: how many faults of each
/// kind to derive, and the universe they land in.
#[derive(Clone, Copy, Debug)]
pub struct FaultProfile {
    /// Fault event times are drawn uniformly from `[1, horizon_actions]`.
    pub horizon_actions: u64,
    /// Number of agents (crash targets are drawn from `0..agents`).
    pub agents: usize,
    /// Number of edges (outage targets are drawn from `0..edges`).
    pub edges: usize,
    /// Crash-stop faults to derive (at most one per agent is kept).
    pub crashes: usize,
    /// Edge outages to derive.
    pub outages: usize,
    /// Outage durations are drawn from `[1, max_outage_actions]`.
    pub max_outage_actions: u64,
    /// Meeting-log append losses to derive.
    pub log_losses: usize,
}

/// SplitMix64 finalizer over a (seed, stream, index) triple — the pure
/// hash behind [`FaultPlan::seeded`] (and the minimax panic injector's
/// fire decision). No state, no clock: the i-th event of a plan is a
/// function of its coordinates alone.
pub(crate) fn mix(seed: u64, stream: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The no-fault plan. Installing it is provably free (see module docs).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// `true` if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.outages.is_empty() && self.log_losses.is_empty()
    }

    /// Builds a plan from explicit fault lists, sorting each by time (the
    /// order [`FaultClock`] consumes them in).
    pub fn new(
        mut crashes: Vec<CrashFault>,
        mut outages: Vec<OutageFault>,
        mut log_losses: Vec<u64>,
    ) -> Self {
        crashes.sort_by_key(|c| (c.at_action, c.agent));
        outages.sort_by_key(|o| (o.at_action, o.edge_index));
        log_losses.sort_unstable();
        log_losses.dedup();
        FaultPlan {
            crashes,
            outages,
            log_losses,
        }
    }

    /// Derives a plan from `seed` by pure integer hashing — event `i` of
    /// each fault kind is a function of `(seed, kind, i)` only, so the
    /// same seed and profile name the same plan on every machine and
    /// every run. Duplicate crash targets are pruned (crash-stop is
    /// idempotent; keeping the earliest makes the plan canonical).
    pub fn seeded(seed: u64, profile: &FaultProfile) -> Self {
        let horizon = profile.horizon_actions.max(1);
        let mut crashes = Vec::with_capacity(profile.crashes);
        if profile.agents > 0 {
            for i in 0..profile.crashes as u64 {
                crashes.push(CrashFault {
                    at_action: 1 + mix(seed, 1, i) % horizon,
                    agent: (mix(seed, 2, i) % profile.agents as u64) as usize,
                });
            }
        }
        crashes.sort_by_key(|c| (c.at_action, c.agent));
        let mut seen_agents = Vec::new();
        crashes.retain(|c| {
            if seen_agents.contains(&c.agent) {
                false
            } else {
                seen_agents.push(c.agent);
                true
            }
        });
        let mut outages = Vec::with_capacity(profile.outages);
        if profile.edges > 0 {
            for i in 0..profile.outages as u64 {
                outages.push(OutageFault {
                    at_action: 1 + mix(seed, 3, i) % horizon,
                    edge_index: (mix(seed, 4, i) % profile.edges as u64) as usize,
                    duration_actions: 1 + mix(seed, 5, i) % profile.max_outage_actions.max(1),
                });
            }
        }
        let log_losses = (0..profile.log_losses as u64)
            .map(|i| 1 + mix(seed, 6, i) % horizon)
            .collect();
        FaultPlan::new(crashes, outages, log_losses)
    }

    /// Parses a plan back from the JSON that [`serde_json::to_string`]
    /// renders for it (the vendored serde has no generic deserialisation,
    /// so the reverse direction is by hand over [`serde_json::Value`]).
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = serde_json::from_str(s).map_err(|e| e.to_string())?;
        let field = |name: &str| -> Result<&[serde_json::Value], String> {
            v.get(name)
                .and_then(|f| f.as_array())
                .ok_or_else(|| format!("FaultPlan JSON: missing array field `{name}`"))
        };
        let num = |v: &serde_json::Value, ctx: &str| -> Result<u64, String> {
            v.as_u64().ok_or_else(|| format!("FaultPlan JSON: {ctx}"))
        };
        let mut crashes = Vec::new();
        for c in field("crashes")? {
            crashes.push(CrashFault {
                at_action: num(
                    c.get("at_action").unwrap_or(&serde_json::Value::Null),
                    "crash at_action",
                )?,
                agent: num(
                    c.get("agent").unwrap_or(&serde_json::Value::Null),
                    "crash agent",
                )? as usize,
            });
        }
        let mut outages = Vec::new();
        for o in field("outages")? {
            outages.push(OutageFault {
                at_action: num(
                    o.get("at_action").unwrap_or(&serde_json::Value::Null),
                    "outage at_action",
                )?,
                edge_index: num(
                    o.get("edge_index").unwrap_or(&serde_json::Value::Null),
                    "outage edge_index",
                )? as usize,
                duration_actions: num(
                    o.get("duration_actions")
                        .unwrap_or(&serde_json::Value::Null),
                    "outage duration_actions",
                )?,
            });
        }
        let log_losses = field("log_losses")?
            .iter()
            .map(|x| num(x, "log_loss action"))
            .collect::<Result<Vec<u64>, String>>()?;
        Ok(FaultPlan::new(crashes, outages, log_losses))
    }
}

/// The runtime's cursor into a [`FaultPlan`]: which crashes have fired,
/// which outages are live. Owned by [`crate::Runtime`]; advanced before
/// every decision. Pure bookkeeping over action counts — rewinding the
/// action clock (a snapshot restore) resets the cursor and replays the
/// plan's prefix, so faulted runs restore as exactly as clean ones.
#[derive(Clone, Debug)]
pub struct FaultClock {
    plan: FaultPlan,
    crash_cursor: usize,
    outage_cursor: usize,
    /// Live outages as `(edge_index, down_until_action)` — an edge is down
    /// for actions strictly below `down_until_action`.
    active: Vec<(usize, u64)>,
    last_action: u64,
}

impl FaultClock {
    /// A clock at the start of `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultClock {
            plan,
            crash_cursor: 0,
            outage_cursor: 0,
            active: Vec::new(),
            last_action: 0,
        }
    }

    /// The plan this clock walks.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advances to `action`, reporting each crash whose time has come via
    /// `on_crash` (crash application is idempotent, so replays after a
    /// rewind re-mark already-crashed agents harmlessly). If the action
    /// clock moved **backwards** — a snapshot restore — the cursor resets
    /// and replays the plan prefix up to `action`.
    pub fn advance(&mut self, action: u64, mut on_crash: impl FnMut(usize)) {
        if action < self.last_action {
            self.crash_cursor = 0;
            self.outage_cursor = 0;
            self.active.clear();
        }
        self.last_action = action;
        while let Some(c) = self.plan.crashes.get(self.crash_cursor) {
            if c.at_action > action {
                break;
            }
            on_crash(c.agent);
            self.crash_cursor += 1;
        }
        while let Some(o) = self.plan.outages.get(self.outage_cursor) {
            if o.at_action > action {
                break;
            }
            let until = o.at_action.saturating_add(o.duration_actions);
            if until > action {
                self.active.push((o.edge_index, until));
            }
            self.outage_cursor += 1;
        }
        self.active.retain(|&(_, until)| until > action);
    }

    /// `true` if dense edge `edge_index` is inside an outage window at
    /// `action` (valid after [`FaultClock::advance`] to that action).
    pub fn edge_down(&self, edge_index: usize, action: u64) -> bool {
        self.active
            .iter()
            .any(|&(e, until)| e == edge_index && until > action)
    }

    /// The action at which every currently-live outage on `edge_index` has
    /// released (`None` if the edge is up at `action`).
    pub fn edge_release(&self, edge_index: usize, action: u64) -> Option<u64> {
        self.active
            .iter()
            .filter(|&&(e, until)| e == edge_index && until > action)
            .map(|&(_, until)| until)
            .max()
    }

    /// `true` if the meeting-log append at `action` is scheduled to be
    /// lost.
    pub fn log_lost(&self, action: u64) -> bool {
        self.plan.log_losses.binary_search(&action).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> FaultProfile {
        FaultProfile {
            horizon_actions: 10_000,
            agents: 4,
            edges: 12,
            crashes: 3,
            outages: 5,
            max_outage_actions: 500,
            log_losses: 4,
        }
    }

    #[test]
    fn seeded_plans_are_pure_functions_of_the_seed() {
        let a = FaultPlan::seeded(42, &profile());
        let b = FaultPlan::seeded(42, &profile());
        let c = FaultPlan::seeded(43, &profile());
        assert_eq!(a, b);
        assert_ne!(a, c, "distinct seeds must name distinct plans");
        assert!(!a.is_empty());
        for w in a.crashes.windows(2) {
            assert!(w[0].at_action <= w[1].at_action, "crashes sorted");
            assert_ne!(w[0].agent, w[1].agent, "at most one crash per agent");
        }
        for o in &a.outages {
            assert!(o.edge_index < profile().edges);
            assert!(o.duration_actions >= 1);
        }
    }

    #[test]
    fn json_round_trips_through_the_vendored_stack() {
        let plan = FaultPlan::seeded(7, &profile());
        let json = serde_json::to_string(&plan).expect("vendored to_string is infallible");
        let back = FaultPlan::from_json(&json).expect("rendered plan must parse");
        assert_eq!(plan, back);
        assert_eq!(
            FaultPlan::from_json(
                &serde_json::to_string(&FaultPlan::empty()).expect("render empty plan")
            )
            .expect("empty plan must parse"),
            FaultPlan::empty()
        );
        assert!(FaultPlan::from_json("{}").is_err(), "missing fields error");
    }

    #[test]
    fn clock_fires_crashes_once_in_time_order() {
        let plan = FaultPlan::new(
            vec![
                CrashFault {
                    at_action: 10,
                    agent: 1,
                },
                CrashFault {
                    at_action: 5,
                    agent: 0,
                },
            ],
            vec![],
            vec![],
        );
        let mut clock = FaultClock::new(plan);
        let mut fired = Vec::new();
        clock.advance(4, |a| fired.push(a));
        assert!(fired.is_empty());
        clock.advance(7, |a| fired.push(a));
        assert_eq!(fired, vec![0]);
        clock.advance(100, |a| fired.push(a));
        assert_eq!(fired, vec![0, 1]);
        clock.advance(200, |a| fired.push(a));
        assert_eq!(fired, vec![0, 1], "crashes fire exactly once going forward");
    }

    #[test]
    fn clock_windows_outages_and_rewinds_replay() {
        let plan = FaultPlan::new(
            vec![CrashFault {
                at_action: 3,
                agent: 2,
            }],
            vec![OutageFault {
                at_action: 10,
                edge_index: 4,
                duration_actions: 5,
            }],
            vec![],
        );
        let mut clock = FaultClock::new(plan);
        clock.advance(9, |_| {});
        assert!(!clock.edge_down(4, 9));
        clock.advance(10, |_| {});
        assert!(clock.edge_down(4, 10));
        assert_eq!(clock.edge_release(4, 10), Some(15));
        clock.advance(14, |_| {});
        assert!(clock.edge_down(4, 14));
        clock.advance(15, |_| {});
        assert!(!clock.edge_down(4, 15), "window is half-open");

        // Rewind (snapshot restore): the prefix replays, crashes included.
        let mut fired = Vec::new();
        clock.advance(12, |a| fired.push(a));
        assert_eq!(fired, vec![2], "rewind replays the crash prefix");
        assert!(clock.edge_down(4, 12), "rewind replays live outages");
    }

    #[test]
    fn log_losses_hit_exact_actions_only() {
        let plan = FaultPlan::new(vec![], vec![], vec![30, 10, 20, 20]);
        let clock = FaultClock::new(plan);
        assert!(clock.log_lost(10));
        assert!(clock.log_lost(20));
        assert!(!clock.log_lost(15));
        assert!(!clock.log_lost(0));
    }
}
