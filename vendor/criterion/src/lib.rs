//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the API surface the workspace's five benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::{benchmark_group,
//! bench_function}`, `BenchmarkGroup::{sample_size, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId::new` — as a simple wall-clock
//! harness. Each benchmark warms up once, runs `sample_size` timed samples,
//! and prints min/median per-iteration times. No statistics, plots, or
//! baseline comparisons: the numbers are honest but rough, and the benches
//! stay compilable and runnable offline.

// Vendored bench harness: wall-clock sampling is its entire purpose.
#![allow(clippy::disallowed_methods)]
use std::fmt::Display;
use std::time::Instant;

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

/// Runs the measured closure and counts iterations.
pub struct Bencher {
    /// Iterations per timed sample.
    iters: u64,
    /// Collected per-iteration times (nanoseconds), one per sample.
    samples: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and iteration-count calibration: aim for samples of at
        // least ~1ms, capped so slow benches still finish promptly.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().as_nanos().max(1) as u64;
        self.iters = (1_000_000 / once).clamp(1, 10_000);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters {
                std::hint::black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / self.iters as f64);
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("{label}: no samples collected");
            return;
        }
        self.samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        // Exact ns/iter first (machine-comparable across runs, libtest
        // style), human-readable rendering after.
        println!(
            "{label}: {median:.2} ns/iter median, {min:.2} ns/iter min [{}] ({} samples x {} iters)",
            fmt_nanos(median),
            self.samples.len(),
            self.iters
        );
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_count = n;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: 1,
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.name));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 1,
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver, handed to every registered bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Display>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_count: 30,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 1,
            samples: Vec::new(),
            sample_count: 30,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Re-export so `use criterion::black_box` keeps working if a bench adopts it.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.finish();
        c.bench_function("add", |b| b.iter(|| 1u64 + 2));
    }
}
