//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the vendored `serde` stub without `syn`/`quote`: the item's token stream
//! is scanned by hand. Supported shapes — the only ones the workspace
//! derives on — are structs with named fields, tuple structs, and enums
//! (variant payloads serialise by name only).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<(String, VariantPayload)>),
}

enum VariantPayload {
    None,
    Tuple,
    Struct,
}

/// Scans the item declaration for its kind (`struct`/`enum`), name, and
/// field/variant list. Attributes, doc comments, visibility, and `where`
/// clauses are skipped; generics are rejected (nothing in the workspace
/// derives on a generic type).
fn parse(input: TokenStream) -> (String, Shape) {
    let mut tokens = input.into_iter().peekable();
    let mut kind = None;
    // Find the `struct` / `enum` keyword, skipping attrs and visibility.
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
                // `pub`, possibly followed by `(crate)` etc. — skipped below.
            }
            _ => {}
        }
    }
    let kind = kind.expect("derive input must be a struct or enum");
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde derive does not support generic types");
    }
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break Some(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return (name, Shape::Tuple(count_fields(g.stream())));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break None,
            Some(_) => continue,
            None => break None,
        }
    };
    let Some(body) = body else {
        return (name, Shape::Unit);
    };
    if kind == "struct" {
        (name, Shape::Named(named_fields(body)))
    } else {
        (name, Shape::Enum(variants(body)))
    }
}

/// Counts the comma-separated fields of a tuple struct body.
fn count_fields(stream: TokenStream) -> usize {
    let mut fields = 0;
    let mut saw_token = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                fields += 1;
                saw_token = false;
            }
            _ => saw_token = true,
        }
    }
    fields + usize::from(saw_token)
}

/// Extracts the field names of a named-field struct body.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Field prefix: attributes and visibility.
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if matches!(tokens.peek(), Some(TokenTree::Group(_))) {
                        tokens.next(); // `(crate)` / `(super)`
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in struct body: {other}"),
                None => return fields,
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma. Generic argument
        // lists need explicit tracking: their `,` are at this token level.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

/// Extracts `(name, payload-kind)` for each variant of an enum body.
fn variants(stream: TokenStream) -> Vec<(String, VariantPayload)> {
    let mut out = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let payload = match tokens.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        tokens.next();
                        VariantPayload::Tuple
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        tokens.next();
                        VariantPayload::Struct
                    }
                    _ => VariantPayload::None,
                };
                out.push((id.to_string(), payload));
                // Skip to the next comma (discriminants, etc.).
                while let Some(tt) = tokens.peek() {
                    if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
            }
            _ => {}
        }
    }
    out
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = match shape {
        Shape::Named(fields) => {
            let mut s = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    s.push_str("out.push(',');\n");
                }
                s.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            s.push_str("out.push('}');");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize_json(&self.0, out);".to_string(),
        Shape::Tuple(n) => {
            let mut s = String::from("out.push('[');\n");
            for i in 0..n {
                if i > 0 {
                    s.push_str("out.push(',');\n");
                }
                s.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            s.push_str("out.push(']');");
            s
        }
        Shape::Unit => "out.push_str(\"null\");".to_string(),
        Shape::Enum(vars) => {
            let mut s = String::from("match self {\n");
            for (v, payload) in &vars {
                let pat = match payload {
                    VariantPayload::None => format!("{name}::{v}"),
                    VariantPayload::Tuple => format!("{name}::{v}(..)"),
                    VariantPayload::Struct => format!("{name}::{v} {{ .. }}"),
                };
                s.push_str(&format!("{pat} => out.push_str(\"\\\"{v}\\\"\"),\n"));
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _) = parse(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}
