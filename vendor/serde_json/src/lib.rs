//! Offline stand-in for `serde_json`: JSON rendering over the vendored
//! `serde` stub's [`serde::Serialize`] trait. Only `to_string` is provided —
//! the experiment binaries emit JSON lines and never parse them back.

use std::fmt;

/// Serialisation error. The vendored [`serde::Serialize`] is infallible, so
/// this is never constructed; it exists to keep `to_string`'s signature
/// source-compatible with real serde_json.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialisation error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn primitives_and_containers_render() {
        assert_eq!(super::to_string(&42u64).unwrap(), "42");
        assert_eq!(super::to_string("a \"b\"\n").unwrap(), r#""a \"b\"\n""#);
        assert_eq!(super::to_string(&Some(3usize)).unwrap(), "3");
        assert_eq!(super::to_string(&None::<u64>).unwrap(), "null");
        assert_eq!(super::to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
    }
}
