//! Offline stand-in for `serde_json`: JSON rendering over the vendored
//! `serde` stub's [`serde::Serialize`] trait, plus a minimal [`Value`]
//! parser ([`from_str`]) so tooling can read back the JSON artifacts the
//! workspace emits (bench baselines, experiment sample dumps).

use std::fmt;

/// Serialisation / parse error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// A parsed JSON document — the dynamically-typed subset the workspace
/// tooling needs (numbers are kept as `f64`, which is exact for the
/// integer magnitudes the bench artifacts contain).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::parse(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::parse(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::parse(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::parse("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::parse("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::parse("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // workspace's artifacts; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error::parse("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe). Validate
                    // only the scalar's own bytes (a sequence is at most 4),
                    // not the whole remaining input per character.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(rest) {
                        Ok(s) => s.chars().next().expect("non-empty by peek"),
                        // A trailing sequence may be cut by `end`; the
                        // leading scalar is still whole if anything decoded.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .expect("non-empty prefix")
                        }
                        Err(_) => return Err(Error::parse("bad UTF-8")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::parse(format!("bad number at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers_render() {
        assert_eq!(super::to_string(&42u64).unwrap(), "42");
        assert_eq!(super::to_string("a \"b\"\n").unwrap(), r#""a \"b\"\n""#);
        assert_eq!(super::to_string(&Some(3usize)).unwrap(), "3");
        assert_eq!(super::to_string(&None::<u64>).unwrap(), "null");
        assert_eq!(super::to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
    }

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-2.5e1").unwrap(), Value::Number(-25.0));
        assert_eq!(from_str(r#""a\nb""#).unwrap(), Value::String("a\nb".into()));
        let v = from_str(r#"{"xs":[1,2,3],"name":"bench"}"#).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("bench"));
        assert_eq!(
            v.get("xs").and_then(Value::as_array).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("xs").unwrap().as_array().unwrap()[2].as_u64(),
            Some(3)
        );
    }

    #[test]
    fn round_trips_workspace_shaped_documents() {
        let rendered = r#"[{"scenario":"f1","median_ns_per_op":1234,"trials":15}]"#;
        let v = from_str(rendered).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("median_ns_per_op").unwrap().as_u64(), Some(1234));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,2").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str(r#"{"a" 1}"#).is_err());
    }
}
