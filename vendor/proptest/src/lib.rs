//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the slice of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute),
//! integer/float range strategies, `any::<T>()`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Semantics: each property runs `cases` times with inputs drawn from a
//! SplitMix64 stream seeded from the test's module path and name, so runs
//! are fully deterministic and reproducible. Integer strategies are biased
//! toward range endpoints (the classic off-by-one catchers). There is no
//! shrinking — a failing case reports its exact inputs instead, which is
//! enough to reproduce under a deterministic generator.

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Per-block configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the heavier simulation
        // properties fast while still exercising plenty of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 input stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test's identity and the case index, so every property
    /// sees a distinct but reproducible stream.
    pub fn from_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of values for one property input.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Sampling with endpoint bias: 1/16 of draws pin each end of the range.
/// Modulo arithmetic runs at width `$w` (the rng output width for the type).
macro_rules! impl_int_strategies {
    ($($t:ty => $next:ident / $w:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                match rng.next_u64() % 16 {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => self.start + (rng.$next() % (self.end - self.start) as $w) as $t,
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                match rng.next_u64() % 16 {
                    0 => lo,
                    1 => hi,
                    // Full-width span: the +1 below would wrap.
                    _ if (hi - lo) as $w == <$w>::MAX => rng.$next() as $t,
                    _ => lo + (rng.$next() % ((hi - lo) as $w + 1)) as $t,
                }
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                (0..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}

impl_int_strategies!(
    u8 => next_u64 / u64, u16 => next_u64 / u64, u32 => next_u64 / u64,
    u64 => next_u64 / u64, usize => next_u64 / u64, u128 => next_u128 / u128
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Full-domain generation for `any::<T>()`.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64().is_multiple_of(2)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; the workspace's properties do arithmetic.
        f64::from_bits(rng.next_u64() >> 2)
            * if rng.next_u64().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            }
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                self.len.generate(rng)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::from_case(test_id, case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {}: {}\n  inputs: {}",
                            stringify!($name), case, msg, inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respect_bounds(a in 3u64..17, b in 5usize..=9, c in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((5..=9).contains(&b));
            prop_assert!((0.25..0.75).contains(&c));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }

        #[test]
        fn range_from_reaches_high_values(x in 1u128..) {
            prop_assert!(x >= 1);
        }
    }

    #[test]
    fn endpoint_bias_hits_both_ends() {
        let strat = 10u64..20;
        let mut rng = TestRng::from_case("bias", 0);
        let draws: Vec<u64> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.contains(&10));
        assert!(draws.contains(&19));
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::from_case("t", 3);
        let mut b = TestRng::from_case("t", 3);
        assert_eq!(
            (0..10).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..10).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
