//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the trait surface the workspace relies on: a [`Serialize`] trait
//! that renders JSON directly (consumed by the vendored `serde_json`), a
//! [`Deserialize`] marker, and `#[derive(Serialize, Deserialize)]` via the
//! sibling `serde_derive` stub. The derive emits field-by-field JSON for
//! structs and the variant name for enums — exactly what the experiment
//! binaries' JSON-lines output needs.

pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves as JSON into a buffer.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// Marker for deserialisable types. Nothing in the workspace deserialises
/// yet; the derive keeps manifests and `#[derive(...)]` lists source-level
/// compatible with real serde.
pub trait Deserialize {}

macro_rules! impl_display_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_display_serialize!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        push_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        push_json_string(self, out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

macro_rules! impl_tuple_serialize {
    ($(($($n:tt $t:ident),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_tuple_serialize!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}
