//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of the `rand 0.8` API the workspace uses
//! (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`,
//! `seq::SliceRandom::shuffle`), backed by the SplitMix64 generator. It is
//! deterministic in its seed, which is all the graph generators and random
//! adversaries require — statistical quality beyond that is not a goal.

use std::ops::Range;

/// Seedable generators (the one constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range type. Implemented for the `Range<_>`
/// instantiations the workspace samples from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Minimal core-RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 uniform mantissa bits, as rand does.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + x * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// The raw generator state — lets callers persist a stream
        /// mid-flight and resume it bit-identically with
        /// [`StdRng::from_state`]. (Upstream rand exposes the same via
        /// `SeedableRng::from_seed` over the full state; the SplitMix64
        /// stand-in's state is a single word.)
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator mid-stream from a state saved by
        /// [`StdRng::state`].
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — public-domain reference
            // constants.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the only `seq` functionality the workspace uses).
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
