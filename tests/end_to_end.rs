//! Workspace-level integration: the full pipeline through the facade crate
//! — graphs → exploration → trajectories → algorithm → simulator →
//! protocols — exercising the public API exactly as a downstream user
//! would.

use meet_asynch::core::{pi_bound, Label};
use meet_asynch::explore::{is_integral, SeededUxs};
use meet_asynch::graph::{generators, GraphFamily, NodeId};
use meet_asynch::protocols::{solve, SglBehavior, SglConfig};
use meet_asynch::sim::adversary::{AdversaryKind, GreedyAvoid};
use meet_asynch::sim::{RunConfig, RunEnd, Runtime, RvBehavior};
use meet_asynch::trajectory::{Lengths, Spec, TrajectoryCursor};

#[test]
fn rendezvous_pipeline_through_the_facade() {
    let g = generators::gnp_connected(10, 0.35, 77);
    let uxs = SeededUxs::quadratic();
    assert!(is_integral(&g, uxs, g.order() as u64, NodeId(0)));
    let agents = vec![
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(100).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(9), Label::new(101).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous());
    let out = rt.run(&mut GreedyAvoid::new(5));
    assert_eq!(out.end, RunEnd::Meeting);
    // The measurement sits below the theoretical guarantee.
    let bound = pi_bound(uxs, g.order() as u64, 7);
    assert!(meet_asynch::arith::Big::from(out.total_traversals) < bound);
}

#[test]
fn sgl_pipeline_through_the_facade() {
    let g = generators::ring(7);
    let uxs = SeededUxs::quadratic();
    let labels = [44u64, 17, 90];
    let agents: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                &g,
                uxs,
                NodeId(2 * i),
                Label::new(l).unwrap(),
                l,
                SglConfig::default(),
            )
        })
        .collect();
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(40_000_000));
    let mut adv = AdversaryKind::Random.build(8);
    let out = rt.run(adv.as_mut());
    assert_eq!(out.end, RunEnd::AllParked);
    for i in 0..rt.agent_count() {
        let b = rt.behavior(i);
        let s = solve(b.label().value(), b.output().expect("output"));
        assert_eq!(s.leader, 17);
        assert_eq!(s.team_size, 3);
    }
}

#[test]
fn trajectory_lengths_match_streamed_execution_across_families() {
    // Cross-crate consistency: the bignum length algebra agrees with the
    // streamed cursor on every family (graph-independence of lengths).
    let uxs = SeededUxs::default();
    let lengths = Lengths::new(uxs);
    for fam in [
        GraphFamily::Ring,
        GraphFamily::Complete,
        GraphFamily::RandomTree,
    ] {
        let g = fam.generate(6, 3);
        for spec in [Spec::X(2), Spec::Q(2), Spec::Y(2), Spec::Z(2)] {
            let mut c = TrajectoryCursor::new(&g, uxs, NodeId(1));
            c.push(spec);
            let mut steps = 0u64;
            while c.next_traversal().is_some() {
                steps += 1;
            }
            assert_eq!(
                meet_asynch::arith::Big::from(steps),
                lengths.of(spec),
                "{fam}/{spec}"
            );
            assert_eq!(c.position(), NodeId(1), "{fam}/{spec} is closed");
        }
    }
}

#[test]
fn different_providers_preserve_rendezvous() {
    // The algorithm is parametric in the exploration provider; rendezvous
    // must hold for any provider that is integral on the graph.
    let g = generators::ring(6);
    for uxs in [
        SeededUxs::default(),
        SeededUxs::quadratic(),
        SeededUxs::new(123, 6),
    ] {
        assert!(is_integral(&g, uxs, 6, NodeId(0)));
        let agents = vec![
            RvBehavior::new(&g, uxs, NodeId(0), Label::new(4).unwrap()),
            RvBehavior::new(&g, uxs, NodeId(3), Label::new(9).unwrap()),
        ];
        let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous());
        let mut adv = AdversaryKind::GreedyAvoid.build(1);
        let out = rt.run(adv.as_mut());
        assert_eq!(out.end, RunEnd::Meeting);
    }
}
