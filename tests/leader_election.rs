//! Leader election end-to-end through the facade: a team of SGL agents on
//! an unknown anonymous network must unanimously elect the smallest label —
//! and the derived renaming/team-size/gossip outputs must be consistent —
//! under different adversarial schedulers (paper §4, applications of
//! Algorithm SGL).

use meet_asynch::core::Label;
use meet_asynch::explore::SeededUxs;
use meet_asynch::graph::{generators, NodeId};
use meet_asynch::protocols::{solve, SglBehavior, SglConfig};
use meet_asynch::sim::adversary::AdversaryKind;
use meet_asynch::sim::{RunConfig, RunEnd, Runtime};

/// Runs SGL to completion and returns each agent's derived solutions.
fn run_election(
    g: &meet_asynch::graph::Graph,
    placements: &[(usize, u64)],
    kind: AdversaryKind,
    seed: u64,
) -> Vec<meet_asynch::protocols::Solutions> {
    let uxs = SeededUxs::quadratic();
    let agents: Vec<_> = placements
        .iter()
        .map(|&(node, label)| {
            SglBehavior::new(
                g,
                uxs,
                NodeId(node),
                Label::new(label).unwrap(),
                // Initial value carried into gossip: derived from the label
                // so the gossip assertion below is self-checking.
                label * 10,
                SglConfig::default(),
            )
        })
        .collect();
    let mut rt = Runtime::new(g, agents, RunConfig::protocol().with_cutoff(40_000_000));
    let mut adv = kind.build(seed);
    let out = rt.run(adv.as_mut());
    assert_eq!(out.end, RunEnd::AllParked, "SGL must terminate ({kind})");
    (0..rt.agent_count())
        .map(|i| {
            let b = rt.behavior(i);
            solve(
                b.label().value(),
                b.output().expect("terminated SGL agent has an output"),
            )
        })
        .collect()
}

#[test]
fn leader_election_is_unanimous_and_minimal() {
    let g = generators::ring(8);
    let placements = [(0usize, 52u64), (2, 8), (4, 71), (6, 33)];
    let solutions = run_election(&g, &placements, AdversaryKind::Random, 11);
    for s in &solutions {
        // Every agent elects the same leader: the smallest label in play.
        assert_eq!(s.leader, 8);
        assert_eq!(s.team_size, placements.len());
        // Gossip carries every agent's initial value, keyed by label.
        let mut expected: Vec<(u64, u64)> = placements.iter().map(|&(_, l)| (l, l * 10)).collect();
        expected.sort_unstable();
        assert_eq!(s.gossip, expected);
    }
    // Perfect renaming: the new names are a bijection onto {1, …, k}.
    let mut names: Vec<usize> = solutions.iter().map(|s| s.new_name).collect();
    names.sort_unstable();
    assert_eq!(names, (1..=placements.len()).collect::<Vec<_>>());
    // The leader's own rank is 1.
    let leader_solution = solutions
        .iter()
        .find(|s| s.new_name == 1)
        .expect("some agent ranks first");
    assert_eq!(leader_solution.leader, 8);
}

#[test]
fn election_result_is_adversary_independent() {
    // The adversary controls timing, never outcomes: the elected leader and
    // the learned label set must be identical under every scheduler.
    let g = generators::lollipop(4, 3);
    let placements = [(0usize, 19u64), (3, 4), (6, 27)];
    let mut all_gossips = Vec::new();
    for kind in [
        AdversaryKind::Random,
        AdversaryKind::GreedyAvoid,
        AdversaryKind::EagerMeet,
    ] {
        let solutions = run_election(&g, &placements, kind, 3);
        for s in &solutions {
            assert_eq!(s.leader, 4, "{kind}: leader must be the minimum label");
        }
        all_gossips.push(solutions[0].gossip.clone());
    }
    all_gossips.dedup();
    assert_eq!(all_gossips.len(), 1, "label/value sets differ by adversary");
}
