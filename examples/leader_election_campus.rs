//! Leader election and perfect renaming among maintenance robots in a
//! building (paper §4's motivating setting: corridors form a graph, robots
//! cannot read room numbers).
//!
//! Four robots with factory serial numbers (labels) wake up on a 4×4 floor
//! grid. They elect the robot with the smallest serial as coordinator and
//! adopt the short names 1..4 for the follow-up work — all at polynomial
//! total walking cost, despite knowing neither the floor plan nor the
//! team size, and despite an adversary controlling their speeds.
//!
//! ```sh
//! cargo run --release --example leader_election_campus
//! ```

use meet_asynch::core::Label;
use meet_asynch::explore::SeededUxs;
use meet_asynch::graph::{generators, NodeId};
use meet_asynch::protocols::{solve, SglBehavior, SglConfig};
use meet_asynch::sim::adversary::GreedyAvoid;
use meet_asynch::sim::{RunConfig, RunEnd, Runtime};

fn main() {
    // The floor: a 4×4 grid of corridor intersections.
    let floor = generators::grid(4, 4);
    let uxs = SeededUxs::quadratic();

    let serials = [40_213u64, 7_772, 19_008, 31_555];
    let robots: Vec<_> = serials
        .iter()
        .enumerate()
        .map(|(i, &serial)| {
            SglBehavior::new(
                &floor,
                uxs,
                NodeId(i * 5), // corners-ish of the grid
                Label::new(serial).unwrap(),
                0,
                SglConfig::default(),
            )
        })
        .collect();

    let mut runtime = Runtime::new(&floor, robots, RunConfig::protocol());
    let outcome = runtime.run(&mut GreedyAvoid::new(99));
    assert_eq!(outcome.end, RunEnd::AllParked);

    println!(
        "election finished: {} total corridor segments walked\n",
        outcome.total_traversals
    );
    for i in 0..runtime.agent_count() {
        let robot = runtime.behavior(i);
        let s = solve(
            robot.label().value(),
            robot.output().expect("all robots output"),
        );
        let role = if s.leader == robot.label().value() {
            "COORDINATOR"
        } else {
            "worker"
        };
        println!(
            "robot serial {:>6} → short name {} of {}  [{role}]",
            robot.label(),
            s.new_name,
            s.team_size,
        );
    }
}
