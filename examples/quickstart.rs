//! Quickstart: two mobile agents meet in an unknown anonymous network.
//!
//! Two agents with distinct labels are dropped at different nodes of a
//! network they know nothing about. An adversary fully controls their
//! relative speeds. Running Algorithm RV-asynch-poly guarantees they meet
//! after polynomially many edge traversals (Theorem 3.1).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use meet_asynch::core::Label;
use meet_asynch::explore::SeededUxs;
use meet_asynch::graph::{generators, NodeId};
use meet_asynch::sim::adversary::GreedyAvoid;
use meet_asynch::sim::{RunConfig, RunEnd, Runtime, RvBehavior};

fn main() {
    // A ring of 12 anonymous nodes with local port numbers only.
    let graph = generators::ring(12);

    // The exploration-sequence provider both agents share (deterministic,
    // label-independent — the stand-in for Reingold's universal sequences).
    let uxs = SeededUxs::quadratic();

    // Agents know nothing but their own labels.
    let alice = RvBehavior::new(&graph, uxs, NodeId(0), Label::new(19).unwrap());
    let bob = RvBehavior::new(&graph, uxs, NodeId(6), Label::new(7).unwrap());

    // The adversary postpones every avoidable meeting.
    let mut adversary = GreedyAvoid::new(42);

    let mut runtime = Runtime::new(&graph, vec![alice, bob], RunConfig::rendezvous());
    let outcome = runtime.run(&mut adversary);

    assert_eq!(outcome.end, RunEnd::Meeting);
    let meeting = outcome.meetings.last().expect("rendezvous happened");
    println!(
        "rendezvous after {} total edge traversals (alice walked {}, bob {}), at {:?}",
        outcome.total_traversals, outcome.per_agent[0], outcome.per_agent[1], meeting.place,
    );
}
