//! Exploring an unknown network with a semi-stationary token
//! (procedure ESST, paper §2).
//!
//! A single agent cannot even decide when it has seen the whole of an
//! anonymous network — but with one token pinned to an extended edge
//! (here: a parked teammate), it can. The token may move adversarially
//! within its edge; ESST still terminates, covers every edge, and its
//! termination phase upper-bounds the (unknown) network order.
//!
//! ```sh
//! cargo run --release --example esst_exploration
//! ```

use meet_asynch::explore::esst::{run_esst, OscillatingToken, StaticNodeToken};
use meet_asynch::explore::SeededUxs;
use meet_asynch::graph::{generators, EdgeId, NodeId};

fn main() {
    let network = generators::lollipop(5, 4); // 9 nodes the agent knows nothing about
    let uxs = SeededUxs::quadratic();
    let order = network.order() as u64;

    // A cooperative token: a teammate parked at node 8.
    let mut parked = StaticNodeToken { node: NodeId(8) };
    let out = run_esst(&network, uxs, NodeId(0), &mut parked, 9 * order + 3)
        .expect("Theorem 2.1: terminates by phase 9n+3");
    println!(
        "parked token    : cost {:>8}, terminated in phase {:>2} (n = {}, bound 9n+3 = {}), \
         covered {}/{} edges",
        out.cost,
        out.final_phase,
        network.order(),
        9 * order + 3,
        out.edges_covered,
        network.size(),
    );

    // An adversarial token sliding around inside its edge.
    let mut sliding = OscillatingToken::new(EdgeId::new(NodeId(7), NodeId(8)));
    let out = run_esst(&network, uxs, NodeId(0), &mut sliding, 9 * order + 3)
        .expect("terminates against adversarial tokens too");
    println!(
        "sliding token   : cost {:>8}, terminated in phase {:>2}, covered {}/{} edges",
        out.cost,
        out.final_phase,
        out.edges_covered,
        network.size(),
    );

    // The termination phase is the order bound E(n) that Algorithm SGL
    // uses: always n < E(n) <= 9n+3.
    assert!(out.final_phase > order);
    println!(
        "\nderived order bound E(n) = {} for a network of {} nodes",
        out.final_phase,
        network.order()
    );
}
