//! Gossiping: a team of software agents, each holding a piece of data,
//! disseminates everything to everyone (paper §4, via Algorithm SGL).
//!
//! Five agents wake up asynchronously at different routers of an unknown
//! network. None knows how many teammates exist. When the protocol
//! quiesces, every agent holds every (label → value) pair *and knows the
//! collection is complete* — the paper's Strong Global Learning.
//!
//! ```sh
//! cargo run --release --example team_gossip
//! ```

use meet_asynch::core::Label;
use meet_asynch::explore::SeededUxs;
use meet_asynch::graph::{generators, NodeId};
use meet_asynch::protocols::{solve, SglBehavior, SglConfig};
use meet_asynch::sim::adversary::RandomAdversary;
use meet_asynch::sim::{RunConfig, RunEnd, Runtime};

fn main() {
    // An irregular network: a random connected graph on 9 nodes.
    let graph = generators::gnp_connected(9, 0.35, 2024);
    let uxs = SeededUxs::quadratic();

    // (label, secret value) pairs — the data to gossip.
    let team: [(u64, u64); 5] = [(12, 7001), (5, 7002), (23, 7003), (9, 7004), (31, 7005)];

    let agents: Vec<_> = team
        .iter()
        .enumerate()
        .map(|(i, &(label, value))| {
            SglBehavior::new(
                &graph,
                uxs,
                NodeId(i + 1),
                Label::new(label).unwrap(),
                value,
                SglConfig::default(),
            )
        })
        .collect();

    let mut runtime = Runtime::new(&graph, agents, RunConfig::protocol());
    let outcome = runtime.run(&mut RandomAdversary::new(7));
    assert_eq!(outcome.end, RunEnd::AllParked, "the protocol quiesces");

    println!(
        "gossip complete after {} total edge traversals and {} meetings\n",
        outcome.total_traversals,
        outcome.meetings.len()
    );
    for i in 0..runtime.agent_count() {
        let agent = runtime.behavior(i);
        let set = agent.output().expect("every agent outputs");
        let solutions = solve(agent.label().value(), set);
        println!(
            "agent {:>2}: knows {} values {:?}, team size {}, leader {}",
            agent.label(),
            solutions.gossip.len(),
            solutions.gossip.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
            solutions.team_size,
            solutions.leader,
        );
    }
}
